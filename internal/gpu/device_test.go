package gpu

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func testDevice(t *testing.T, cfg DeviceConfig) *Device {
	t.Helper()
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func smallConfig() DeviceConfig {
	return DeviceConfig{
		Name:           "toy",
		SMs:            2,
		CoresPerSM:     64,
		WarpSize:       32,
		LaunchOverhead: 1e-6,
		SecondsPerCost: 1e-9,
	}
}

func TestNewDeviceValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*DeviceConfig)
	}{
		{"zero SMs", func(c *DeviceConfig) { c.SMs = 0 }},
		{"zero cores", func(c *DeviceConfig) { c.CoresPerSM = 0 }},
		{"zero warp", func(c *DeviceConfig) { c.WarpSize = 0 }},
		{"cores not multiple of warp", func(c *DeviceConfig) { c.CoresPerSM = 33 }},
		{"non-positive cost scale", func(c *DeviceConfig) { c.SecondsPerCost = 0 }},
		{"negative overhead", func(c *DeviceConfig) { c.LaunchOverhead = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig()
			tt.mutate(&cfg)
			if _, err := NewDevice(cfg); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
}

func TestK40Shape(t *testing.T) {
	d := testDevice(t, TeslaK40())
	if got := d.Cores(); got != 2880 {
		t.Fatalf("K40 cores = %d, want 2880", got)
	}
	if got := d.WarpSlots(); got != 90 {
		t.Fatalf("K40 warp slots = %d, want 90", got)
	}
}

func TestLaunchFunctionalResult(t *testing.T) {
	d := testDevice(t, smallConfig())
	out := make([]int, 100)
	_, err := d.Launch(context.Background(), 100, func(i int) (float64, error) {
		out[i] = i * i
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestLaunchEmptyKernel(t *testing.T) {
	d := testDevice(t, smallConfig())
	stats, err := d.Launch(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SimTime != smallConfig().LaunchOverhead {
		t.Fatalf("empty launch SimTime = %g, want overhead %g", stats.SimTime, smallConfig().LaunchOverhead)
	}
	if stats.Utilization() != 1 {
		t.Fatalf("empty launch utilization = %g, want 1", stats.Utilization())
	}
}

func TestLaunchKernelError(t *testing.T) {
	d := testDevice(t, smallConfig())
	boom := errors.New("kernel boom")
	_, err := d.Launch(context.Background(), 10, func(i int) (float64, error) {
		if i == 7 {
			return 0, boom
		}
		return 1, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestLaunchNegativeCostRejected(t *testing.T) {
	d := testDevice(t, smallConfig())
	_, err := d.Launch(context.Background(), 1, func(int) (float64, error) { return -1, nil })
	if err == nil {
		t.Fatal("want error for negative cost")
	}
}

func TestDivergenceChargesWarpMax(t *testing.T) {
	// One warp of 32 lanes: 31 lanes cost 1, one lane costs 10.
	// Lockstep must charge 32*10; busy is 31+10.
	d := testDevice(t, smallConfig())
	stats, err := d.Launch(context.Background(), 32, func(i int) (float64, error) {
		if i == 5 {
			return 10, nil
		}
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Warps != 1 {
		t.Fatalf("warps = %d, want 1", stats.Warps)
	}
	if got, want := stats.LockstepCost, 320.0; got != want {
		t.Fatalf("LockstepCost = %g, want %g", got, want)
	}
	if got, want := stats.BusyCost, 41.0; got != want {
		t.Fatalf("BusyCost = %g, want %g", got, want)
	}
	wantSim := smallConfig().LaunchOverhead + 10*smallConfig().SecondsPerCost
	if math.Abs(stats.SimTime-wantSim) > 1e-18 {
		t.Fatalf("SimTime = %g, want %g", stats.SimTime, wantSim)
	}
}

func TestUniformKernelHasFullUtilization(t *testing.T) {
	d := testDevice(t, smallConfig())
	stats, err := d.Launch(context.Background(), 64, func(int) (float64, error) { return 3, nil })
	if err != nil {
		t.Fatal(err)
	}
	if u := stats.Utilization(); math.Abs(u-1) > 1e-12 {
		t.Fatalf("uniform kernel utilization = %g, want 1", u)
	}
}

func TestRaggedLastWarpStillChargesFullWidth(t *testing.T) {
	// 33 items => 2 warps; second warp has 1 active lane of cost 4 but is
	// charged 32*4.
	d := testDevice(t, smallConfig())
	stats, err := d.Launch(context.Background(), 33, func(i int) (float64, error) {
		if i == 32 {
			return 4, nil
		}
		return 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Warps != 2 {
		t.Fatalf("warps = %d, want 2", stats.Warps)
	}
	want := 32*2.0 + 32*4.0
	if stats.LockstepCost != want {
		t.Fatalf("LockstepCost = %g, want %g", stats.LockstepCost, want)
	}
}

func TestOversubscriptionSerializesWarps(t *testing.T) {
	// Device with 4 warp slots; 8 uniform warps of cost 5 must take 2
	// rounds: makespan 10.
	cfg := smallConfig()
	cfg.SMs = 1
	cfg.CoresPerSM = 128 // 4 warp slots
	d := testDevice(t, cfg)
	stats, err := d.Launch(context.Background(), 8*32, func(int) (float64, error) { return 5, nil })
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.LaunchOverhead + 10*cfg.SecondsPerCost
	if math.Abs(stats.SimTime-want) > 1e-15 {
		t.Fatalf("SimTime = %g, want %g", stats.SimTime, want)
	}
}

// TestLaunchProperty_MakespanBounds: the simulated time always respects the
// two classic scheduling lower bounds (critical path, total-work/capacity)
// and the list-scheduling upper bound (2x optimal is not checked — only
// feasibility: makespan <= total work on one slot).
func TestLaunchProperty_MakespanBounds(t *testing.T) {
	cfg := smallConfig()
	d := testDevice(t, cfg)
	f := func(rawCosts []uint16) bool {
		n := len(rawCosts)
		if n == 0 {
			return true
		}
		costs := make([]float64, n)
		for i, c := range rawCosts {
			costs[i] = float64(c%1000) + 1
		}
		stats, err := d.Launch(context.Background(), n, func(i int) (float64, error) {
			return costs[i], nil
		})
		if err != nil {
			return false
		}
		work := (stats.SimTime - cfg.LaunchOverhead) / cfg.SecondsPerCost
		maxCost := 0.0
		for _, c := range costs {
			if c > maxCost {
				maxCost = c
			}
		}
		// Critical path bound.
		if work < maxCost-1e-9 {
			return false
		}
		// Capacity bound: lockstep cost spread over all lanes.
		if work < stats.LockstepCost/float64(d.Cores())-1e-9 {
			return false
		}
		// Feasibility: never slower than fully serial lockstep execution.
		return work <= stats.LockstepCost/float64(cfg.WarpSize)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLaunch2880(b *testing.B) {
	d, err := NewDevice(TeslaK40())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_, err := d.Launch(context.Background(), 2880, func(idx int) (float64, error) {
			return float64(idx%37) + 1, nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
