package chaos

import (
	"testing"
	"time"
)

// A nil injector and unarmed points are inert: this is the production
// default, so it must never fire and never panic.
func TestNilAndUnarmedAreInert(t *testing.T) {
	var in *Injector
	if in.Fire(RecvDrop) {
		t.Fatal("nil injector fired")
	}
	if d := in.Stall(FsyncStall); d != 0 {
		t.Fatalf("nil injector stalled %v", d)
	}
	if n := in.Fired(RecvDup); n != 0 {
		t.Fatalf("nil injector Fired = %d", n)
	}
	live := New(1)
	if live.Fire(RecvDrop) {
		t.Fatal("unarmed point fired")
	}
}

// The same seed must yield the same fire sequence — the chaos suite's
// determinism claim rests on this.
func TestSameSeedSameSchedule(t *testing.T) {
	run := func() []bool {
		in := New(0xc0ffee)
		in.Arm(RecvDrop, Rule{Prob: 0.3})
		in.Arm(RecvDelay, Rule{Prob: 0.5, Delay: time.Millisecond})
		out := make([]bool, 0, 200)
		for i := 0; i < 100; i++ {
			out = append(out, in.Fire(RecvDrop))
			out = append(out, in.Stall(RecvDelay) != 0)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at evaluation %d", i)
		}
	}
}

// Per-point streams are independent: arming (and drawing from) one
// point must not change another point's decisions.
func TestPointStreamsIndependent(t *testing.T) {
	solo := New(42)
	solo.Arm(RecvDrop, Rule{Prob: 0.4})
	var want []bool
	for i := 0; i < 50; i++ {
		want = append(want, solo.Fire(RecvDrop))
	}

	both := New(42)
	both.Arm(RecvDrop, Rule{Prob: 0.4})
	both.Arm(RecvDup, Rule{Prob: 0.9})
	for i := 0; i < 50; i++ {
		both.Fire(RecvDup) // interleaved draws on another point
		if got := both.Fire(RecvDrop); got != want[i] {
			t.Fatalf("RecvDrop decision %d perturbed by RecvDup draws", i)
		}
	}
}

func TestAfterAndLimitBounds(t *testing.T) {
	in := New(7)
	in.Arm(FsyncStall, Rule{Prob: 1, Delay: 5 * time.Millisecond, After: 3, Limit: 2})
	var fired int
	for i := 0; i < 10; i++ {
		if in.Stall(FsyncStall) != 0 {
			if i < 3 {
				t.Fatalf("fired during After window at evaluation %d", i)
			}
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, Limit 2", fired)
	}
	if got := in.Fired(FsyncStall); got != 2 {
		t.Fatalf("Fired() = %d, want 2", got)
	}
}

func TestProbBounds(t *testing.T) {
	in := New(9)
	in.Arm(RecvDup, Rule{Prob: 0})
	in.Arm(RecvDrop, Rule{Prob: 1})
	for i := 0; i < 100; i++ {
		if in.Fire(RecvDup) {
			t.Fatal("Prob 0 fired")
		}
		if !in.Fire(RecvDrop) {
			t.Fatal("Prob 1 did not fire")
		}
	}
}
