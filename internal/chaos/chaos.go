// Package chaos is a deterministic, seedable fault-injection layer for
// the serve/store/lease stack. Production code consults named fault
// points through a *Injector that is nil by default — every method is
// nil-safe and an unarmed point never fires, so the hooks cost one nil
// check on the hot path and nothing else.
//
// Tests build an Injector from a fixed seed and arm individual points
// with a probability, an optional delay, and optional after/limit
// bounds. Each point draws from its own splitmix64 stream (derived from
// the injector seed and the point name), so arming one point never
// perturbs the decision sequence of another and a given seed always
// yields the same fault schedule.
package chaos

import (
	"sync"
	"time"
)

// Point names a fault-injection site. The constants below are the
// points wired into the codebase; an Injector accepts arbitrary names
// so tests can add private points without touching this package.
type Point string

const (
	// RecvDrop: serve-side dff reader drops the connection instead of
	// delivering the next ResultMsg (simulates a worker link failure).
	RecvDrop Point = "recv-drop"
	// RecvDup: serve-side dff reader delivers the next ResultMsg twice
	// (the dedup filter must squash the duplicate).
	RecvDup Point = "recv-dup"
	// RecvDelay: serve-side dff reader sleeps Rule.Delay before
	// delivering the next ResultMsg (reorders progress across workers).
	RecvDelay Point = "recv-delay"
	// FsyncStall: the store sleeps Rule.Delay before each journal
	// fsync (simulates a disk that has gone slow).
	FsyncStall Point = "fsync-stall"
	// LeaseExpireEarly: a lease manager judging ANOTHER owner's lease
	// treats it as already expired (premature steal — exercises the
	// fencing path with the previous owner still alive).
	LeaseExpireEarly Point = "lease-expire-early"
	// HandoffDrop: the owner's POST /leases/{job}/handoff handler drops
	// the request on the floor — nothing is checkpointed or released,
	// the requester must retry on a later rebalance tick.
	HandoffDrop Point = "handoff-drop"
	// HandoffCrash: the rebalance requester "dies" between the owner's
	// release-with-pointer and its own adoption; the job must degrade to
	// ordinary failover once the targeted reservation lapses.
	HandoffCrash Point = "handoff-crash"
)

// Rule arms a fault point.
type Rule struct {
	// Prob is the per-evaluation fire probability in [0,1]; >=1 always
	// fires, <=0 never does.
	Prob float64
	// Delay is returned by Stall when the point fires (for sleep-style
	// points); Fire-style points ignore it.
	Delay time.Duration
	// After skips the first N evaluations before the point may fire.
	After int
	// Limit caps the total number of fires; 0 means unlimited.
	Limit int
}

type point struct {
	rng   uint64
	rule  Rule
	calls int
	fired int
}

// Injector holds armed fault points. The zero value is not used;
// construct with New. A nil *Injector is the "chaos off" value.
type Injector struct {
	mu     sync.Mutex
	seed   uint64
	points map[Point]*point
}

// New returns an Injector whose fault schedule is fully determined by
// seed (per point, given an identical evaluation sequence).
func New(seed uint64) *Injector {
	return &Injector{seed: seed, points: make(map[Point]*point)}
}

// Arm installs (or replaces) the rule for a point and resets its
// counters and rng stream. Arming a nil Injector panics — arm only the
// injectors you constructed.
func (in *Injector) Arm(p Point, r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.points[p] = &point{rng: in.seed ^ fnv64(string(p)), rule: r}
}

// Fire reports whether the point fires at this evaluation. Nil-safe;
// unarmed points never fire.
func (in *Injector) Fire(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	pt, ok := in.points[p]
	if !ok {
		return false
	}
	pt.calls++
	if pt.calls <= pt.rule.After {
		return false
	}
	if pt.rule.Limit > 0 && pt.fired >= pt.rule.Limit {
		return false
	}
	// Draw even when Prob>=1 so the stream position only depends on
	// the evaluation count, not on the armed probability.
	u := splitmix64(&pt.rng)
	if pt.rule.Prob < 1 && float64(u>>11)/(1<<53) >= pt.rule.Prob {
		return false
	}
	pt.fired++
	return true
}

// Stall is Fire for sleep-style points: it returns the armed delay when
// the point fires and 0 otherwise. The caller sleeps; the injector
// never blocks.
func (in *Injector) Stall(p Point) time.Duration {
	if in == nil {
		return 0
	}
	if !in.Fire(p) {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.points[p].rule.Delay
}

// Fired returns how many times the point has fired. Nil-safe.
func (in *Injector) Fired(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	pt, ok := in.points[p]
	if !ok {
		return 0
	}
	return pt.fired
}

// splitmix64 advances *s and returns the next value of the stream.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnv64 hashes a point name into a per-point stream offset.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
