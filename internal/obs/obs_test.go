package obs

import (
	"math/bits"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMetricsAllocationFree pins the hot-path contract the serve and
// sim layers rely on: observing a metric must not allocate, the same
// way TestStepAllocationFree pins the simulation kernel. A cached
// CounterVec child (how jobs and worker connections hold their tenant/
// worker counters) must be allocation-free too.
func TestMetricsAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_counter_total", "test")
	g := r.Gauge("t_gauge", "test")
	h := r.Histogram("t_hist_seconds", "test")
	child := r.CounterVec("t_vec_total", "test", "tenant", 4).With("alice")

	cases := []struct {
		name string
		fn   func()
	}{
		{"counter_inc", func() { c.Inc() }},
		{"counter_add", func() { c.Add(3) }},
		{"gauge_set", func() { g.Set(7) }},
		{"gauge_add", func() { g.Add(-2) }},
		{"histogram_observe", func() { h.Observe(123 * time.Microsecond) }},
		{"vec_child_inc", func() { child.Inc() }},
		{"nil_counter", func() { (*Counter)(nil).Inc() }},
		{"nil_histogram", func() { (*Histogram)(nil).Observe(time.Second) }},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(200, tc.fn); avg != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, avg)
		}
	}
}

// TestHistogramBucketBoundaries: bucket i must hold exactly the
// durations d with bits.Len64(d) == i, i.e. 2^(i-1) ≤ d < 2^i ns, with
// 0 in bucket 0 and everything ≥ 2^(histBuckets-1) in overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0}, // negative clamps to zero
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{1025, 11},
		{time.Duration(1) << 38, 39},
		{time.Duration(1)<<39 - 1, 39},        // largest finite-bucket value
		{time.Duration(1) << 39, histBuckets}, // first overflow value
		{time.Duration(1<<62 + 12345), histBuckets}, // deep overflow
	}
	for _, tc := range cases {
		var h Histogram
		h.Observe(tc.d)
		buckets, count, sumNs := h.Snapshot()
		if count != 1 {
			t.Fatalf("Observe(%d): count %d", tc.d, count)
		}
		got := -1
		for i, b := range buckets {
			if b == 1 {
				got = i
			}
		}
		if got != tc.want {
			t.Errorf("Observe(%dns) landed in bucket %d, want %d", int64(tc.d), got, tc.want)
		}
		wantSum := uint64(tc.d)
		if tc.d < 0 {
			wantSum = 0
		}
		if sumNs != wantSum {
			t.Errorf("Observe(%dns) sum %d, want %d", int64(tc.d), sumNs, wantSum)
		}
		if tc.d >= 0 && tc.want < histBuckets && tc.d != 0 {
			if l := bits.Len64(uint64(tc.d)); l != tc.want {
				t.Errorf("test-case self-check: bits.Len64(%d)=%d != %d", tc.d, l, tc.want)
			}
		}
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines (run under -race in CI) and checks no observation is lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	if n := h.Count(); n != goroutines*per {
		t.Fatalf("lost observations: count %d, want %d", n, goroutines*per)
	}
}

// TestCounterVecCardinalityCap: beyond max distinct label values, new
// values fold into the "other" child instead of growing the exposition.
func TestCounterVecCardinalityCap(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("t_tenant_total", "test", "tenant", 3)
	for _, tenant := range []string{"a", "b", "c"} {
		v.With(tenant).Inc()
	}
	// Beyond the cap: d and e share "other".
	v.With("d").Inc()
	v.With("e").Add(2)
	if v.With("d") != v.With("e") {
		t.Fatal("overflow values got distinct children")
	}
	if got := v.With(VecOverflow).Value(); got != 3 {
		t.Fatalf("other child = %d, want 3", got)
	}
	// Pre-cap children stay distinct and intact.
	if v.With("a") == v.With("b") || v.With("a").Value() != 1 {
		t.Fatal("pre-cap children corrupted")
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "t_tenant_total{tenant="); n != 4 {
		t.Fatalf("rendered %d children, want 4 (3 + other):\n%s", n, out)
	}
	if !strings.Contains(out, `t_tenant_total{tenant="other"} 3`) {
		t.Fatalf("missing folded other child:\n%s", out)
	}
}

// TestExpositionFormat checks the rendered text against the Prometheus
// 0.0.4 grammar: HELP/TYPE per family, histogram bucket/sum/count
// structure, cumulative non-decreasing buckets ending at +Inf == count.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_jobs_total", "jobs", "outcome", "done").Add(5)
	r.Gauge("t_depth", "queue depth").Set(3)
	r.GaugeFunc("t_live", "live peers", func() float64 { return 2 })
	h := r.Histogram("t_wait_seconds", "wait")
	h.Observe(100 * time.Nanosecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(20 * time.Minute) // overflow bucket

	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP t_jobs_total jobs\n# TYPE t_jobs_total counter\nt_jobs_total{outcome=\"done\"} 5\n",
		"# TYPE t_depth gauge\nt_depth 3\n",
		"t_live 2\n",
		"# TYPE t_wait_seconds histogram\n",
		`t_wait_seconds_bucket{le="+Inf"} 3`,
		"t_wait_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Cumulative buckets never decrease, and the finite tail (which the
	// 20-minute observation overflows past) stays below +Inf's total.
	var prev uint64
	var lastFinite uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "t_wait_seconds_bucket") {
			continue
		}
		var v uint64
		if _, err := fmtSscan(line, &v); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts decreased at %q", line)
		}
		prev = v
		if !strings.Contains(line, "+Inf") {
			lastFinite = v
		}
	}
	if lastFinite != 2 || prev != 3 {
		t.Fatalf("finite tail %d (want 2, overflow excluded), +Inf %d (want 3)", lastFinite, prev)
	}

	// Every sample line is "name{labels} value" with a parseable value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
	}
}

// fmtSscan pulls the trailing integer off a sample line.
func fmtSscan(line string, v *uint64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*v, err = parseUint(line[i+1:])
	return 1, err
}

func parseUint(s string) (uint64, error) {
	var v uint64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errNotUint
		}
		v = v*10 + uint64(s[i]-'0')
	}
	return v, nil
}

var errNotUint = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "not an unsigned integer" }

// TestRegistryIdempotentConstructors: registering the same series twice
// returns the same metric, so package-level wiring can be re-run safely.
func TestRegistryIdempotentConstructors(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_total", "x")
	b := r.Counter("t_total", "x")
	if a != b {
		t.Fatal("duplicate Counter registration returned a new metric")
	}
	h1 := r.Histogram("t_h_seconds", "x", "k", "v")
	h2 := r.Histogram("t_h_seconds", "x", "k", "v")
	if h1 != h2 {
		t.Fatal("duplicate Histogram registration returned a new metric")
	}
}

// TestRenderEvaluatesCallbacksUnlocked pins the lock-ordering contract
// that keeps /metrics scrapes deadlock-free: Render must not hold the
// registry mutex while evaluating GaugeFunc callbacks. Application
// callbacks take server locks, and application code registers metrics
// (CounterVec.With on first sight of a tenant) while holding those same
// locks — if Render sampled under r.mu, a scrape racing a first-tenant
// submission would AB-BA deadlock. A callback that re-enters the
// registry is the sharpest probe: sync.Mutex is not reentrant, so the
// old behaviour hangs here instead of merely racing.
func TestRenderEvaluatesCallbacksUnlocked(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("t_reentrant", "samples via a registry re-entry", func() float64 {
		r.Counter("t_registered_during_scrape_total", "x").Inc()
		return 1
	})
	done := make(chan error, 1)
	go func() {
		var sb strings.Builder
		done <- r.Render(&sb)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Render deadlocked: registry mutex held during GaugeFunc callback")
	}
	if got := r.Counter("t_registered_during_scrape_total", "x").Value(); got != 1 {
		t.Fatalf("callback-registered counter = %d, want 1", got)
	}
}

// TestRegistryKindCollisionPanics: re-registering a name or series as a
// different kind must fail loudly — the old behaviour returned a nil
// metric, silently discarding every subsequent write.
func TestRegistryKindCollisionPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: kind collision did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("t_kind_total", "x")
	mustPanic("family counter->gauge", func() { r.Gauge("t_kind_total", "x") })
	mustPanic("family counter->histogram", func() { r.Histogram("t_kind_total", "x") })
	mustPanic("family counter->gaugefunc", func() {
		r.GaugeFunc("t_kind_total", "x", func() float64 { return 0 })
	})

	// Same family type but a different series backing: a CounterFunc
	// series re-requested as a value-backed Counter (and vice versa).
	r.CounterFunc("t_fn_total", "x", func() float64 { return 0 })
	mustPanic("series fn->counter", func() { r.Counter("t_fn_total", "x") })
	r.Gauge("t_val", "x")
	mustPanic("series gauge->gaugefunc", func() {
		r.GaugeFunc("t_val", "x", func() float64 { return 0 })
	})

	// Legitimate re-registrations stay allowed: same kind returns the
	// same metric, and a func series swaps its callback.
	if r.Counter("t_kind_total", "x") == nil {
		t.Fatal("same-kind re-registration returned nil")
	}
	r.CounterFunc("t_fn_total", "x", func() float64 { return 42 })
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "t_fn_total 42") {
		t.Fatalf("replaced CounterFunc callback not sampled:\n%s", sb.String())
	}
}

// TestNilRegistrySafe: a nil registry hands out usable no-op metrics.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x_total", "x").Inc()
	r.Gauge("x", "x").Set(1)
	r.Histogram("x_seconds", "x").Observe(time.Second)
	r.GaugeFunc("y", "y", func() float64 { return 1 })
	r.CounterVec("v_total", "v", "k", 2).With("a").Inc()
	if err := r.Render(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}
