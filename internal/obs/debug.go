package obs

import (
	"net/http"
	"net/http/pprof"
)

// NewDebugMux returns the handler every binary mounts on its
// -debug-addr: GET /metrics rendering reg, plus the net/http/pprof
// profiling endpoints under /debug/pprof/.
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("GET /metrics", reg)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
