// Package obs is the service's observability core: allocation-free
// atomic counters, gauges and fixed-bucket latency histograms, plus a
// Registry that renders them in Prometheus text exposition format
// (version 0.0.4) for GET /metrics.
//
// The package is dependency-free (stdlib only) and built for the 0
// allocs/op hot paths: Counter.Inc and Gauge.Set are single atomic
// operations, Histogram.Observe is exactly two atomic adds (one bucket,
// one sum) with a branch-free bits.Len64 bucket index. Every metric
// method is nil-receiver safe, so instrumented code paths never need a
// "metrics enabled?" conditional — a nil *Counter or *Histogram is a
// no-op sink.
//
// Cardinality policy: metrics are registered once with a fixed label
// set; the only dynamic labels come from CounterVec, which caps its
// distinct children and folds overflow values into the reserved child
// "other", so a hostile tenant name or an unbounded worker fleet cannot
// grow the exposition without bound.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value. Safe on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (which may be negative). Safe on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Inc adds one. Safe on a nil receiver.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one. Safe on a nil receiver.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of finite histogram buckets. Bucket 0 holds
// zero-duration observations; bucket i (1 ≤ i < histBuckets) holds
// durations with 2^(i-1) ≤ d < 2^i nanoseconds, so the cumulative upper
// bound of bucket i is 2^i−1 ns. 2^39 ns ≈ 9.2 minutes; anything longer
// lands in the overflow slot and is visible only in +Inf/_count/_sum.
const histBuckets = 40

// Histogram is a fixed-bucket latency histogram over power-of-two
// nanosecond buckets. Observe is two atomic adds and never allocates,
// so it is safe inside the 0 allocs/op simulation and analysis paths.
type Histogram struct {
	buckets [histBuckets + 1]atomic.Uint64 // last slot = overflow
	sumNs   atomic.Uint64
}

// Observe records one duration. Negative durations count as zero. Safe
// on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	idx := bits.Len64(uint64(ns))
	if idx > histBuckets {
		idx = histBuckets
	}
	h.buckets[idx].Add(1)
	h.sumNs.Add(uint64(ns))
}

// Snapshot returns the per-bucket counts (overflow last), the total
// observation count and the sum of observed nanoseconds.
func (h *Histogram) Snapshot() (buckets [histBuckets + 1]uint64, count, sumNs uint64) {
	if h == nil {
		return
	}
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		count += buckets[i]
	}
	return buckets, count, h.sumNs.Load()
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	_, n, _ := h.Snapshot()
	return n
}

// bucketLE renders the cumulative upper bound of finite bucket i in
// seconds: 0 for bucket 0, (2^i−1)·1e-9 beyond.
func bucketLE(i int) string {
	if i == 0 {
		return "0"
	}
	ns := float64(uint64(1)<<uint(i)) - 1
	return strconv.FormatFloat(ns/1e9, 'g', -1, 64)
}

// seriesKind discriminates what a registered series renders as.
type series struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // sampled at scrape time (GaugeFunc/CounterFunc)
}

type family struct {
	name, help, typ string
	series          []*series
	index           map[string]*series
}

// Registry holds registered metrics and renders them as Prometheus text
// exposition. All methods are safe for concurrent use and safe on a nil
// receiver — a nil Registry hands out nil metrics, which are no-op sinks.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) familyLocked(name, help, typ string) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, index: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		// A silent nil metric here would turn every write into an
		// invisible no-op; registration collisions are programmer errors
		// and fail loudly at startup instead.
		panic(fmt.Sprintf("obs: metric %q registered as %s but already exists as %s", name, typ, f.typ))
	}
	return f
}

// checkSeriesKind panics when an existing series under the same family
// was registered as a different backing kind (e.g. a CounterFunc series
// re-requested as a plain Counter), which would otherwise hand the
// caller a nil, silently no-op metric.
func checkSeriesKind(name string, s *series, ok bool) {
	if !ok {
		panic(fmt.Sprintf("obs: series %s%s already registered with a different backing kind", name, s.labels))
	}
}

// renderLabels turns ("k","v","k2","v2") into `{k="v",k2="v2"}`.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Counter registers (or returns the already-registered) counter under
// name with the given label key/value pairs. Nil-registry safe.
func (r *Registry) Counter(name, help string, labelKV ...string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "counter")
	key := renderLabels(labelKV)
	if s, ok := f.index[key]; ok {
		checkSeriesKind(name, s, s.c != nil)
		return s.c
	}
	s := &series{labels: key, c: &Counter{}}
	f.index[key] = s
	f.series = append(f.series, s)
	return s.c
}

// Gauge registers (or returns) a gauge. Nil-registry safe.
func (r *Registry) Gauge(name, help string, labelKV ...string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "gauge")
	key := renderLabels(labelKV)
	if s, ok := f.index[key]; ok {
		checkSeriesKind(name, s, s.g != nil)
		return s.g
	}
	s := &series{labels: key, g: &Gauge{}}
	f.index[key] = s
	f.series = append(f.series, s)
	return s.g
}

// Histogram registers (or returns) a latency histogram. Nil-registry
// safe.
func (r *Registry) Histogram(name, help string, labelKV ...string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "histogram")
	key := renderLabels(labelKV)
	if s, ok := f.index[key]; ok {
		checkSeriesKind(name, s, s.h != nil)
		return s.h
	}
	s := &series{labels: key, h: &Histogram{}}
	f.index[key] = s
	f.series = append(f.series, s)
	return s.h
}

// GaugeFunc registers a gauge whose value is sampled by fn at scrape
// time — for values the server already tracks elsewhere (queue depths,
// live peers), so /metrics and /healthz read the same source and can
// never disagree. Re-registering the same series replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelKV ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "gauge")
	key := renderLabels(labelKV)
	if s, ok := f.index[key]; ok {
		checkSeriesKind(name, s, s.fn != nil)
		s.fn = fn
		return
	}
	s := &series{labels: key, fn: fn}
	f.index[key] = s
	f.series = append(f.series, s)
}

// CounterFunc registers a counter sampled by fn at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelKV ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "counter")
	key := renderLabels(labelKV)
	if s, ok := f.index[key]; ok {
		checkSeriesKind(name, s, s.fn != nil)
		s.fn = fn
		return
	}
	s := &series{labels: key, fn: fn}
	f.index[key] = s
	f.series = append(f.series, s)
}

// VecOverflow is the reserved child label value that absorbs counts for
// label values beyond a CounterVec's cardinality cap.
const VecOverflow = "other"

// CounterVec is a counter family over one dynamic label (tenant id,
// worker address) with a hard cardinality cap: once max distinct values
// exist, further values share the reserved "other" child. With is a
// mutex-guarded map lookup — callers on hot paths should resolve their
// child once and cache the *Counter, which is what the serve layer does
// per job and per worker connection.
type CounterVec struct {
	r    *Registry
	name string
	help string
	key  string
	max  int

	mu   sync.Mutex
	kids map[string]*Counter
}

// CounterVec registers a capped dynamic-label counter family.
// maxChildren < 1 means 1. Nil-registry safe (returns nil; With on a
// nil vec returns a nil, no-op counter).
func (r *Registry) CounterVec(name, help, labelKey string, maxChildren int) *CounterVec {
	if r == nil {
		return nil
	}
	if maxChildren < 1 {
		maxChildren = 1
	}
	return &CounterVec{
		r: r, name: name, help: help, key: labelKey, max: maxChildren,
		kids: make(map[string]*Counter),
	}
}

// With returns the child counter for value, folding values beyond the
// cardinality cap into the "other" child.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[value]; ok {
		return c
	}
	if value != VecOverflow && len(v.kids) >= v.max {
		value = VecOverflow
		if c, ok := v.kids[value]; ok {
			return c
		}
	}
	c := v.r.Counter(v.name, v.help, v.key, value)
	v.kids[value] = c
	return c
}

// Render writes the registry in Prometheus text exposition format.
//
// The family and series structure is snapshotted under r.mu, but metric
// values are read — and GaugeFunc/CounterFunc callbacks evaluated —
// only after the lock is released. Callbacks routinely acquire
// application locks (queue depths, job counts), and application code
// registers metrics (CounterVec.With) while holding those same locks;
// sampling a callback under r.mu would order the two locks both ways
// and deadlock a scrape against a concurrent registration.
func (r *Registry) Render(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]family, len(r.families))
	for i, f := range r.families {
		fams[i] = family{name: f.name, help: f.help, typ: f.typ}
		fams[i].series = make([]*series, len(f.series))
		for j, s := range f.series {
			// Copy the series value: fn may be replaced by a later
			// GaugeFunc re-registration under r.mu, so reading the shared
			// struct outside the lock would race.
			c := *s
			fams[i].series[j] = &c
		}
	}
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.h != nil:
				renderHistogram(&b, f.name, s.labels, s.h)
			case s.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case s.g != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.g.Value())
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels,
					strconv.FormatFloat(s.fn(), 'g', -1, 64))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// withLE splices an le="bound" label into an already-rendered label set.
func withLE(labels, bound string) string {
	if labels == "" {
		return `{le="` + bound + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + bound + `"}`
}

func renderHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	buckets, count, sumNs := h.Snapshot()
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += buckets[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(labels, bucketLE(i)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(labels, "+Inf"), count)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels,
		strconv.FormatFloat(float64(sumNs)/1e9, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, count)
}

// ServeHTTP makes a Registry an http.Handler for GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.Render(w)
}
