package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceSpanLogBoundedAndOrdered(t *testing.T) {
	dropped := &Counter{}
	tr := NewTrace("", dropped)
	if len(tr.ID()) != 32 {
		t.Fatalf("trace id %q, want 32 hex digits", tr.ID())
	}
	base := time.Now()
	// Add out of order; Snapshot must sort by start.
	tr.Span("b", "", "", base.Add(time.Second), base.Add(2*time.Second))
	tr.Span("a", "", "", base, base.Add(time.Millisecond))
	spans, d := tr.Snapshot()
	if d != 0 || len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("snapshot: %+v dropped=%d", spans, d)
	}
	for _, s := range spans {
		if s.Trace != tr.ID() {
			t.Fatalf("span not stamped with trace id: %+v", s)
		}
	}
	// Fill past the cap: the excess is counted, not stored.
	for i := 0; i < TraceCap+10; i++ {
		tr.Event("e", "", "")
	}
	spans, d = tr.Snapshot()
	if len(spans) != TraceCap {
		t.Fatalf("span log grew past the cap: %d", len(spans))
	}
	if d != 12 || dropped.Value() != 12 {
		t.Fatalf("dropped=%d counter=%d, want 12", d, dropped.Value())
	}
}

func TestTraceMergeRestampsForeignSpans(t *testing.T) {
	tr := NewTrace("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", nil)
	tr.Merge([]Span{{Trace: "ffff", Name: "worker-stream", Origin: "w1", Start: 10, End: 20}})
	spans, _ := tr.Snapshot()
	if len(spans) != 1 || spans[0].Trace != tr.ID() || spans[0].Origin != "w1" {
		t.Fatalf("merge: %+v", spans)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := NewTraceID()
	h := FormatTraceparent(id)
	got, ok := ParseTraceparent(h)
	if !ok || got != id {
		t.Fatalf("round trip %q -> %q ok=%v", h, got, ok)
	}
	for _, bad := range []string{
		"",
		"00-zz-11-01",
		"00-" + strings.Repeat("0", 32) + "-1122334455667788-01", // all-zero id
		"00-" + id + "-tooshort-01",
		"garbage",
		"zz-" + id + "-nothexhere!!!!!!-xx",                // non-hex version, span id and flags
		"ff-" + id + "-1122334455667788-01",                // reserved version
		"0-" + id + "-1122334455667788-01",                 // short version
		"00-" + id + "-1122334455667788-0",                 // short flags
		"00-" + id + "-1122334455667788-0g",                // non-hex flags
		"00-" + id + "-" + strings.Repeat("0", 16) + "-01", // all-zero span id
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestTraceSummaryOneLine(t *testing.T) {
	tr := NewTrace("", nil)
	base := time.Now()
	tr.Span("admission", "a", "", base, base)
	tr.Span("run", "a", "", base, base.Add(1500*time.Millisecond))
	s := tr.Summary()
	if strings.ContainsAny(s, "\n") || !strings.Contains(s, "run@a=1.5s") {
		t.Fatalf("summary %q", s)
	}
	var nilTrace *Trace
	if nilTrace.Summary() != "" || nilTrace.ID() != "" {
		t.Fatal("nil trace not inert")
	}
	nilTrace.Event("x", "", "") // must not panic
}
