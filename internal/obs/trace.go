// Cross-process job tracing: a Trace is a bounded span log carried by a
// job from admission to its terminal state. The trace id propagates
// inbound over HTTP in a W3C traceparent-style header and outbound over
// the dff wire in the job header, so spans recorded by a remote sim
// worker come home in the result-stream trailer and land in the owning
// replica's trace. Spans are deliberately lifecycle-granular (admission,
// queue wait, dispatch, per-worker streams, first window, terminal) —
// per-quantum spans would blow the bound on long jobs; per-quantum
// timing belongs to the histograms.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one traced interval (or instant, when EndNs == StartNs).
// Spans cross process boundaries by value (gob over dff, JSON over
// HTTP), so the type is plain exported data.
type Span struct {
	Trace  string `json:"trace_id"`
	Name   string `json:"name"`
	Origin string `json:"origin,omitempty"` // replica id or worker identity
	Start  int64  `json:"start_unix_ns"`
	End    int64  `json:"end_unix_ns,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Duration is the span's length (0 for instant events).
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// TraceCap bounds the spans retained per trace; later spans are counted
// as dropped instead of growing the log.
const TraceCap = 256

// Trace is a bounded, concurrency-safe span log with a fixed trace id.
type Trace struct {
	mu      sync.Mutex
	id      string
	spans   []Span
	dropped int
	onDrop  *Counter // optional global drop counter (nil-safe)
}

// NewTrace returns a trace with the given id (a fresh random id when
// empty). dropped, if non-nil, is bumped whenever the span cap discards
// a span.
func NewTrace(id string, dropped *Counter) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	return &Trace{id: id, onDrop: dropped}
}

// ID returns the 32-hex-digit trace id ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Span records one interval. Safe on a nil receiver.
func (t *Trace) Span(name, origin, detail string, start, end time.Time) {
	if t == nil {
		return
	}
	t.add(Span{
		Name: name, Origin: origin, Detail: detail,
		Start: start.UnixNano(), End: end.UnixNano(),
	})
}

// Event records one instant. Safe on a nil receiver.
func (t *Trace) Event(name, origin, detail string) {
	if t == nil {
		return
	}
	now := time.Now().UnixNano()
	t.add(Span{Name: name, Origin: origin, Detail: detail, Start: now, End: now})
}

// Merge absorbs spans recorded elsewhere (a remote worker's trailer)
// into this trace, restamping them with the local trace id. Safe on a
// nil receiver.
func (t *Trace) Merge(spans []Span) {
	if t == nil {
		return
	}
	for _, s := range spans {
		t.add(s)
	}
}

func (t *Trace) add(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.Trace = t.id
	if len(t.spans) >= TraceCap {
		t.dropped++
		t.onDrop.Inc()
		return
	}
	t.spans = append(t.spans, s)
}

// Snapshot returns a copy of the spans ordered by start time, plus the
// number of spans dropped at the cap.
func (t *Trace) Snapshot() ([]Span, int) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	dropped := t.dropped
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out, dropped
}

// Summary renders a one-line digest of the trace for terminal job logs:
// the first few spans with their durations, and a +N tail marker.
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	spans, dropped := t.Snapshot()
	const keep = 8
	var b strings.Builder
	b.WriteString("trace=")
	b.WriteString(t.id)
	for i, s := range spans {
		if i == keep {
			fmt.Fprintf(&b, " +%d more", len(spans)-keep)
			break
		}
		b.WriteByte(' ')
		b.WriteString(s.Name)
		if s.Origin != "" {
			b.WriteByte('@')
			b.WriteString(s.Origin)
		}
		if d := s.Duration(); d > 0 {
			b.WriteByte('=')
			b.WriteString(d.Round(time.Microsecond).String())
		}
	}
	if dropped > 0 {
		fmt.Fprintf(&b, " dropped=%d", dropped)
	}
	return b.String()
}

// NewTraceID returns a 16-byte random trace id in lower-case hex.
func NewTraceID() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a fixed id
		// merely degrades trace uniqueness.
		return "00000000000000000000000000000001"
	}
	return hex.EncodeToString(buf[:])
}

// ParseTraceparent extracts the trace id from a W3C traceparent header
// ("00-<32 hex trace id>-<16 hex span id>-<2 hex flags>"). ok is false
// for malformed headers: every field is length- and hex-checked per the
// W3C grammar, and the reserved version "ff", the all-zero trace id and
// the all-zero parent span id are rejected.
func ParseTraceparent(h string) (traceID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 ||
		len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", false
	}
	for _, p := range parts {
		if _, err := hex.DecodeString(strings.ToLower(p)); err != nil {
			return "", false
		}
	}
	if strings.ToLower(parts[0]) == "ff" {
		return "", false
	}
	id := strings.ToLower(parts[1])
	if id == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return "", false
	}
	return id, true
}

// FormatTraceparent renders a traceparent header carrying traceID with
// a fresh random parent span id.
func FormatTraceparent(traceID string) string {
	var span [8]byte
	_, _ = rand.Read(span[:])
	return "00-" + traceID + "-" + hex.EncodeToString(span[:]) + "-01"
}
