#!/usr/bin/env bash
# Observability smoke: one cwc-dist sim worker plus cwc-serve sharding a
# job across it. Checks, end to end on real binaries:
#
#   1. GET /metrics renders Prometheus text exposition on both the main
#      listener and the -debug-addr one, covering the pipeline-stage
#      histograms and counters after a job ran;
#   2. a caller-supplied traceparent id is honoured: GET /jobs/{id}/trace
#      returns NDJSON spans under that id, including the worker-stream
#      span recorded on the remote worker process;
#   3. the worker's own -debug-addr /metrics shows its quantum activity;
#   4. /debug/pprof answers on the debug listener.
#
# Needs: go, curl, jq, sha256sum. Run from the repo root.
set -euo pipefail

BIN=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/cwc-serve" ./cmd/cwc-serve
go build -o "$BIN/cwc-dist" ./cmd/cwc-dist

W1=127.0.0.1:7201
W1DBG=127.0.0.1:7202
SRV=127.0.0.1:7210
DBG=127.0.0.1:7211

"$BIN/cwc-dist" worker -listen "$W1" -sim-workers 2 -debug-addr "$W1DBG" &
"$BIN/cwc-serve" -listen "$SRV" -sim-workers 2 -workers "$W1" -debug-addr "$DBG" &

. "$(dirname "$0")/lib.sh"
wait_healthy "$SRV"

TRACE=cafe0000000000000000000000000d0c
SPEC='{"model":"sir","omega":100,"trajectories":16,"end":12,"period":0.5,"window":8,"seed":7}'

ID=$(curl -fsS "http://$SRV/jobs" \
  -H "traceparent: 00-$TRACE-00f067aa0ba902b7-01" \
  -d "$SPEC" | jq -re .id)
curl -fsS "http://$SRV/jobs/$ID/result?wait=true" >"$BIN/result.json"
STATE=$(jq -re .status.state "$BIN/result.json")
if [ "$STATE" != "done" ]; then
  echo "FAIL: job ended $STATE: $(jq -r .status.error "$BIN/result.json")" >&2
  exit 1
fi
if [ "$(jq -re .status.trace_id "$BIN/result.json")" != "$TRACE" ]; then
  echo "FAIL: status does not carry the submitted trace id" >&2
  exit 1
fi

# 1. Exposition on the main listener: the stage series must be there and
# populated after the run.
curl -fsS "http://$SRV/metrics" >"$BIN/metrics.txt"
for series in \
  'cwc_sched_wait_seconds_count' \
  'cwc_quantum_seconds_count{site="local"}' \
  'cwc_ingress_wait_seconds_count' \
  'cwc_analyse_seconds_count' \
  'cwc_reorder_wait_seconds_count' \
  'cwc_quanta_total{site="local"}' \
  'cwc_windows_published_total' \
  'cwc_submits_total{outcome="created"}' \
  'cwc_cache_requests_total{result="miss"}' \
  'cwc_jobs{state="total"}' \
  'cwc_remote_workers{state="known"}'; do
  if ! grep -qF "$series" "$BIN/metrics.txt"; then
    echo "FAIL: /metrics is missing $series" >&2
    exit 1
  fi
done

# The debug listener must serve the identical registry, plus pprof.
curl -fsS "http://$DBG/metrics" >"$BIN/debug-metrics.txt"
grep -qF 'cwc_windows_published_total' "$BIN/debug-metrics.txt" || {
  echo "FAIL: -debug-addr /metrics does not render the registry" >&2
  exit 1
}
curl -fsS "http://$DBG/debug/pprof/cmdline" >/dev/null || {
  echo "FAIL: -debug-addr does not serve /debug/pprof" >&2
  exit 1
}

# 2. Trace: spans under the submitted id, including the remote worker's
# stream span (it lands with the stream trailer; poll briefly).
for _ in $(seq 1 50); do
  curl -fsS "http://$SRV/jobs/$ID/trace" >"$BIN/trace.ndjson" || true
  if grep -q '"worker-stream"' "$BIN/trace.ndjson"; then break; fi
  sleep 0.1
done
for span in admission dispatch run worker-stream; do
  if ! jq -se --arg n "$span" 'map(select(.name == $n)) | length >= 1' \
    "$BIN/trace.ndjson" >/dev/null; then
    echo "FAIL: trace has no \"$span\" span:" >&2
    cat "$BIN/trace.ndjson" >&2
    exit 1
  fi
done
if jq -se --arg id "$TRACE" 'map(select(.trace_id != $id)) | length > 0' \
  "$BIN/trace.ndjson" >/dev/null; then
  echo "FAIL: trace contains spans under a foreign trace id" >&2
  exit 1
fi

# 3. The worker's own registry saw the job.
curl -fsS "http://$W1DBG/metrics" >"$BIN/worker-metrics.txt"
for series in cwc_worker_quantum_seconds_count cwc_worker_tasks_total; do
  if ! grep -qF "$series" "$BIN/worker-metrics.txt"; then
    echo "FAIL: worker /metrics is missing $series" >&2
    exit 1
  fi
done
TASKS=$(awk '$1 == "cwc_worker_tasks_total" {print $2}' "$BIN/worker-metrics.txt")
if [ -z "$TASKS" ] || [ "$TASKS" -lt 1 ]; then
  echo "FAIL: worker completed no tasks according to its own metrics (got '$TASKS')" >&2
  exit 1
fi

echo "OK: metrics exposition, cross-process trace and worker registry all answer"
