#!/usr/bin/env bash
# Crash-recovery smoke: SIGKILL a cwc-serve with a durable -data-dir in
# the middle of a job, restart it on the same directory, and require the
# resumed job's window-stats digest to be bit-identical to an
# uninterrupted single-process run of the same spec.
#
# Needs: go, curl, jq, sha256sum. Run from the repo root. Set
# RECOVERY_DATA_DIR to keep the data dir for debugging (CI uploads it on
# failure).
set -euo pipefail

BIN=$(mktemp -d)
DATA=${RECOVERY_DATA_DIR:-$BIN/data}
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/cwc-serve" ./cmd/cwc-serve

REF=127.0.0.1:7120  # uninterrupted reference
DUR=127.0.0.1:7121  # durable server that gets SIGKILLed

# The spec is sized so the job is reliably mid-run when the kill lands
# (~1s of simulation: ~0.5M SSA steps per trajectory at omega 5000):
# 385 samples × 16 trajectories, 49 tumbling windows.
SPEC='{"model":"neurospora","omega":5000,"trajectories":16,"end":48,"period":0.125,"window":8,"step":8,"seed":42}'

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "server $1 never became healthy" >&2
  return 1
}

digest_of() { # result-json-file -> digest of the full window stream
  jq -c '.windows' "$1" | sha256sum | cut -d' ' -f1
}

# Reference: uninterrupted run, no data dir.
"$BIN/cwc-serve" -listen "$REF" -sim-workers 2 &
wait_healthy "$REF"
REF_ID=$(curl -fsS "http://$REF/jobs" -d "$SPEC" | jq -re .id)
curl -fsS "http://$REF/jobs/$REF_ID/result?wait=true" >"$BIN/ref.json"
[ "$(jq -re .status.state "$BIN/ref.json")" = done ]
REF_DIGEST=$(digest_of "$BIN/ref.json")
REF_WINDOWS=$(jq -re .status.progress.windows "$BIN/ref.json")

# Durable server: submit, wait until some windows are published but the
# job is still running, then SIGKILL — no shutdown path runs at all.
"$BIN/cwc-serve" -listen "$DUR" -sim-workers 2 -data-dir "$DATA" &
DUR_PID=$!
wait_healthy "$DUR"
DUR_ID=$(curl -fsS "http://$DUR/jobs" -d "$SPEC" | jq -re .id)

MIDRUN=0
for _ in $(seq 1 300); do
  ST=$(curl -fsS "http://$DUR/jobs/$DUR_ID")
  WINDOWS=$(jq -re .progress.windows <<<"$ST")
  STATE=$(jq -re .state <<<"$ST")
  if [ "$STATE" != running ]; then break; fi
  if [ "$WINDOWS" -ge 3 ] && [ "$WINDOWS" -lt "$REF_WINDOWS" ]; then MIDRUN=1; break; fi
  sleep 0.02
done
if [ "$MIDRUN" != 1 ]; then
  echo "FAIL: job finished before the kill landed (windows=$WINDOWS); enlarge the spec" >&2
  exit 1
fi
kill -9 "$DUR_PID"
wait "$DUR_PID" 2>/dev/null || true
echo "killed cwc-serve mid-run at $WINDOWS/$REF_WINDOWS windows"

# Restart on the same data dir: the job must be recovered, resumed and
# finished with the reference digest.
"$BIN/cwc-serve" -listen "$DUR" -sim-workers 2 -data-dir "$DATA" &
wait_healthy "$DUR"
curl -fsS "http://$DUR/jobs/$DUR_ID/result?wait=true" >"$BIN/resumed.json"
STATE=$(jq -re .status.state "$BIN/resumed.json")
if [ "$STATE" != done ]; then
  echo "FAIL: resumed job ended $STATE: $(jq -r .status.error "$BIN/resumed.json")" >&2
  exit 1
fi
if [ "$(jq -re .status.recovered "$BIN/resumed.json")" != true ]; then
  echo "FAIL: resumed job not marked recovered" >&2
  exit 1
fi
RES_DIGEST=$(digest_of "$BIN/resumed.json")
RES_WINDOWS=$(jq -re .status.progress.windows "$BIN/resumed.json")

# The recovered history is listable and the store is visible in healthz.
LISTED=$(curl -fsS "http://$DUR/jobs?state=done" | jq -re 'map(select(.id == "'"$DUR_ID"'")) | length')
JOURNAL=$(curl -fsS "http://$DUR/healthz" | jq -re .store.journal_bytes)

echo "reference digest: $REF_DIGEST ($REF_WINDOWS windows)"
echo "resumed digest:   $RES_DIGEST ($RES_WINDOWS windows, journal ${JOURNAL}B)"

if [ "$LISTED" != 1 ]; then
  echo "FAIL: recovered job missing from GET /jobs?state=done" >&2
  exit 1
fi
if [ "$RES_WINDOWS" != "$REF_WINDOWS" ]; then
  echo "FAIL: resumed run published $RES_WINDOWS windows, reference $REF_WINDOWS" >&2
  exit 1
fi
if [ "$RES_DIGEST" != "$REF_DIGEST" ]; then
  echo "FAIL: resumed window digest diverged from the uninterrupted run" >&2
  exit 1
fi
echo "OK: SIGKILL + restart resume is bit-identical to the uninterrupted run"
