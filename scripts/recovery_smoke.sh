#!/usr/bin/env bash
# Crash-recovery smoke: SIGKILL a cwc-serve with a durable -data-dir in
# the middle of a job, restart it on the same directory, and require the
# resumed job's window-stats digest to be bit-identical to an
# uninterrupted single-process run of the same spec.
#
# The durable server runs the tenant-aware control plane (-scheduler wfq,
# -default-tenant-concurrency 1): the digest job belongs to tenant alice,
# tenant bob holds one running job and one queued behind it, and after the
# kill+restart the tenant ids AND bob's queue position must have survived.
#
# Needs: go, curl, jq, sha256sum. Run from the repo root. Set
# RECOVERY_DATA_DIR to keep the data dir for debugging (CI uploads it on
# failure).
set -euo pipefail

BIN=$(mktemp -d)
DATA=${RECOVERY_DATA_DIR:-$BIN/data}
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/cwc-serve" ./cmd/cwc-serve

REF=127.0.0.1:7120  # uninterrupted reference
DUR=127.0.0.1:7121  # durable server that gets SIGKILLed

# The spec is sized so the job is reliably mid-run when the kill lands
# (~1s of simulation: ~0.5M SSA steps per trajectory at omega 5000):
# 385 samples × 16 trajectories, 49 tumbling windows.
SPEC='{"model":"neurospora","omega":5000,"trajectories":16,"end":48,"period":0.125,"window":8,"step":8,"seed":42}'

. "$(dirname "$0")/lib.sh"

# Reference: uninterrupted run, no data dir.
"$BIN/cwc-serve" -listen "$REF" -sim-workers 2 &
wait_healthy "$REF"
REF_ID=$(curl -fsS "http://$REF/jobs" -d "$SPEC" | jq -re .id)
curl -fsS "http://$REF/jobs/$REF_ID/result?wait=true" >"$BIN/ref.json"
[ "$(jq -re .status.state "$BIN/ref.json")" = done ]
REF_DIGEST=$(digest_of "$BIN/ref.json")
REF_WINDOWS=$(jq -re .status.progress.windows "$BIN/ref.json")

# Durable server: submit, wait until some windows are published but the
# job is still running, then SIGKILL — no shutdown path runs at all.
TENANT_FLAGS="-scheduler wfq -default-tenant-concurrency 1"
"$BIN/cwc-serve" -listen "$DUR" -sim-workers 2 -data-dir "$DATA" $TENANT_FLAGS &
DUR_PID=$!
wait_healthy "$DUR"
DUR_ID=$(curl -fsS "http://$DUR/jobs" -H 'X-CWC-Tenant: alice' -d "$SPEC" | jq -re .id)

# Tenant bob: one long-running job (holds bob's single concurrency slot
# across the crash) and one queued behind it at position 1.
BOB_SPEC='{"model":"neurospora","omega":5000,"trajectories":16,"end":600,"period":0.125,"window":8,"step":8,"seed":7}'
BOB1_ID=$(curl -fsS "http://$DUR/jobs" -H 'X-CWC-Tenant: bob' -d "$BOB_SPEC" | jq -re .id)
BOB2=$(curl -fsS "http://$DUR/jobs" -H 'X-CWC-Tenant: bob' -d "$SPEC")
BOB2_ID=$(jq -re .id <<<"$BOB2")
if [ "$(jq -re .state <<<"$BOB2")" != queued ] || [ "$(jq -re .queue_position <<<"$BOB2")" != 1 ]; then
  echo "FAIL: bob's second job should queue at position 1, got: $BOB2" >&2
  exit 1
fi

MIDRUN=0
for _ in $(seq 1 300); do
  ST=$(curl -fsS "http://$DUR/jobs/$DUR_ID")
  WINDOWS=$(jq -re .progress.windows <<<"$ST")
  STATE=$(jq -re .state <<<"$ST")
  if [ "$STATE" != running ]; then break; fi
  if [ "$WINDOWS" -ge 3 ] && [ "$WINDOWS" -lt "$REF_WINDOWS" ]; then MIDRUN=1; break; fi
  sleep 0.02
done
if [ "$MIDRUN" != 1 ]; then
  echo "FAIL: job finished before the kill landed (windows=$WINDOWS); enlarge the spec" >&2
  exit 1
fi
kill -9 "$DUR_PID"
wait "$DUR_PID" 2>/dev/null || true
echo "killed cwc-serve mid-run at $WINDOWS/$REF_WINDOWS windows"

# Restart on the same data dir: the job must be recovered, resumed and
# finished with the reference digest.
"$BIN/cwc-serve" -listen "$DUR" -sim-workers 2 -data-dir "$DATA" $TENANT_FLAGS &
wait_healthy "$DUR"

# Tenant state survived the SIGKILL: ids are intact, bob's running job
# holds his slot again and his queued job is still waiting at position 1.
BOB2_ST=$(curl -fsS "http://$DUR/jobs/$BOB2_ID")
if [ "$(jq -re .tenant <<<"$BOB2_ST")" != bob ] || \
   [ "$(jq -re .state <<<"$BOB2_ST")" != queued ] || \
   [ "$(jq -re .queue_position <<<"$BOB2_ST")" != 1 ]; then
  echo "FAIL: bob's queued job did not survive the restart intact: $BOB2_ST" >&2
  exit 1
fi
if [ "$(curl -fsS "http://$DUR/jobs/$DUR_ID" | jq -re .tenant)" != alice ]; then
  echo "FAIL: alice's tenant id lost across the restart" >&2
  exit 1
fi
BOB_ROW=$(curl -fsS "http://$DUR/tenants" | jq -c '.[] | select(.name == "bob")')
if [ "$(jq -re .active <<<"$BOB_ROW")" != 1 ] || [ "$(jq -re .queued <<<"$BOB_ROW")" != 1 ]; then
  echo "FAIL: GET /tenants after restart: $BOB_ROW (want bob active=1 queued=1)" >&2
  exit 1
fi
echo "tenant state recovered: bob active=1, queued job $BOB2_ID still at position 1"

curl -fsS "http://$DUR/jobs/$DUR_ID/result?wait=true" >"$BIN/resumed.json"
# Bob's jobs have proven their point; free the pool for the digest check.
curl -fsS -X DELETE "http://$DUR/jobs/$BOB1_ID" >/dev/null
curl -fsS -X DELETE "http://$DUR/jobs/$BOB2_ID" >/dev/null
STATE=$(jq -re .status.state "$BIN/resumed.json")
if [ "$STATE" != done ]; then
  echo "FAIL: resumed job ended $STATE: $(jq -r .status.error "$BIN/resumed.json")" >&2
  exit 1
fi
if [ "$(jq -re .status.recovered "$BIN/resumed.json")" != true ]; then
  echo "FAIL: resumed job not marked recovered" >&2
  exit 1
fi
RES_DIGEST=$(digest_of "$BIN/resumed.json")
RES_WINDOWS=$(jq -re .status.progress.windows "$BIN/resumed.json")

# The recovered history is listable and the store is visible in healthz.
LISTED=$(curl -fsS "http://$DUR/jobs?state=done" | jq -re 'map(select(.id == "'"$DUR_ID"'")) | length')
JOURNAL=$(curl -fsS "http://$DUR/healthz" | jq -re .store.journal_bytes)

echo "reference digest: $REF_DIGEST ($REF_WINDOWS windows)"
echo "resumed digest:   $RES_DIGEST ($RES_WINDOWS windows, journal ${JOURNAL}B)"

if [ "$LISTED" != 1 ]; then
  echo "FAIL: recovered job missing from GET /jobs?state=done" >&2
  exit 1
fi
if [ "$RES_WINDOWS" != "$REF_WINDOWS" ]; then
  echo "FAIL: resumed run published $RES_WINDOWS windows, reference $REF_WINDOWS" >&2
  exit 1
fi
if [ "$RES_DIGEST" != "$REF_DIGEST" ]; then
  echo "FAIL: resumed window digest diverged from the uninterrupted run" >&2
  exit 1
fi
echo "OK: SIGKILL + restart resume is bit-identical to the uninterrupted run"
