#!/usr/bin/env bash
# Distributed smoke: two cwc-dist sim workers plus cwc-serve sharding a
# job across them must produce a window-stats digest bit-identical to a
# single-process cwc-serve run of the same seed.
#
# Needs: go, curl, jq, sha256sum. Run from the repo root.
set -euo pipefail

BIN=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/cwc-serve" ./cmd/cwc-serve
go build -o "$BIN/cwc-dist" ./cmd/cwc-dist

W1=127.0.0.1:7101
W2=127.0.0.1:7102
REF=127.0.0.1:7100 # single-process reference
DIST=127.0.0.1:7110

"$BIN/cwc-dist" worker -listen "$W1" -sim-workers 2 &
"$BIN/cwc-dist" worker -listen "$W2" -sim-workers 2 &
"$BIN/cwc-serve" -listen "$REF" -sim-workers 2 &
"$BIN/cwc-serve" -listen "$DIST" -sim-workers 2 -workers "$W1,$W2" -worker-inflight 4 &

. "$(dirname "$0")/lib.sh"
wait_healthy "$REF"
wait_healthy "$DIST"

SPEC='{"model":"sir","omega":100,"trajectories":16,"end":12,"period":0.5,"window":8,"seed":42}'

run_job() { # base-url -> digest of the full window stream
  local base=$1 id
  id=$(curl -fsS "http://$base/jobs" -d "$SPEC" | jq -re .id)
  curl -fsS "http://$base/jobs/$id/result?wait=true" >"$BIN/$base.json"
  local state
  state=$(jq -re .status.state "$BIN/$base.json")
  if [ "$state" != "done" ]; then
    echo "job on $base ended $state: $(jq -r .status.error "$BIN/$base.json")" >&2
    return 1
  fi
  digest_of "$BIN/$base.json"
}

REF_DIGEST=$(run_job "$REF")
DIST_DIGEST=$(run_job "$DIST")

# remote_tasks_done is omitempty: absent means 0 (no sharding happened).
REMOTE_DONE=$(jq -r '.status.progress.remote_tasks_done // 0' "$BIN/$DIST.json")
echo "reference digest:   $REF_DIGEST"
echo "distributed digest: $DIST_DIGEST (remote_tasks_done=$REMOTE_DONE)"

if [ "$REMOTE_DONE" -lt 1 ]; then
  echo "FAIL: the distributed run completed no trajectories on remote workers" >&2
  exit 1
fi
if [ "$REF_DIGEST" != "$DIST_DIGEST" ]; then
  echo "FAIL: distributed window digest diverged from the single-process run" >&2
  exit 1
fi
echo "OK: distributed digest bit-identical to single-process"
