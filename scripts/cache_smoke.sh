#!/usr/bin/env bash
# Cache/attach smoke: the content-addressed result cache end to end
# against a real cwc-serve binary.
#
#  1. Run a spec to completion, then resubmit it byte-reordered: the
#     answer must be cache_hit=true, the same job id, a bit-identical
#     window digest, and zero new simulation (reactions unchanged).
#  2. Submit a second spec twice concurrently: exactly one simulation,
#     and two concurrent streams of that job see identical window
#     sequences.
#  3. SIGTERM the server and restart it on the same -data-dir: the cache
#     index is rebuilt from journal replay, so the resubmission still
#     hits with the same id and digest.
#
# Needs: go, curl, jq, sha256sum. Run from the repo root. Set
# CACHE_DATA_DIR to keep the data dir for debugging (CI uploads it on
# failure).
set -euo pipefail

BIN=$(mktemp -d)
DATA=${CACHE_DATA_DIR:-$BIN/data}
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN"' EXIT

. "$(dirname "$0")/lib.sh"

go build -o "$BIN/cwc-serve" ./cmd/cwc-serve

SRV=127.0.0.1:7150

# Same model as the recovery smoke, smaller: ~97 samples x 8 trajectories.
SPEC='{"model":"neurospora","omega":5000,"trajectories":8,"end":24,"period":0.25,"window":8,"step":8,"seed":42}'
# The identical submission with its JSON keys in a different order: the
# digest is content-addressed, not byte-addressed.
SPEC_REORDERED='{"seed":42,"step":8,"window":8,"period":0.25,"end":24,"trajectories":8,"omega":5000,"model":"neurospora"}'
# A distinct spec for the concurrent-attach phase, long enough that the
# second submission reliably lands while the first is still running.
SPEC2='{"model":"neurospora","omega":5000,"trajectories":8,"end":48,"period":0.125,"window":8,"step":8,"seed":7}'

"$BIN/cwc-serve" -listen "$SRV" -sim-workers 2 -data-dir "$DATA" &
SERVE_PID=$!
wait_healthy "$SRV"

# --- Phase 1: run once, resubmit, require a hit with identical bits ----

ID1=$(curl -fsS "http://$SRV/jobs" -d "$SPEC" | jq -re .id)
curl -fsS "http://$SRV/jobs/$ID1/result?wait=true" >"$BIN/first.json"
STATE=$(jq -re .status.state "$BIN/first.json")
if [ "$STATE" != "done" ]; then
  echo "FAIL: first run ended $STATE: $(jq -r .status.error "$BIN/first.json")" >&2
  exit 1
fi
DIGEST1=$(digest_of "$BIN/first.json")
REACTIONS1=$(jq -re .status.progress.reactions "$BIN/first.json")

curl -fsS "http://$SRV/jobs" -d "$SPEC_REORDERED" >"$BIN/resubmit.json"
HIT=$(jq -r '.cache_hit // false' "$BIN/resubmit.json")
ID2=$(jq -re .id "$BIN/resubmit.json")
if [ "$HIT" != "true" ] || [ "$ID2" != "$ID1" ]; then
  echo "FAIL: resubmit not served from cache (cache_hit=$HIT id=$ID2 want $ID1)" >&2
  exit 1
fi
curl -fsS "http://$SRV/jobs/$ID2/result?wait=true" >"$BIN/second.json"
DIGEST2=$(digest_of "$BIN/second.json")
REACTIONS2=$(jq -re .status.progress.reactions "$BIN/second.json")
if [ "$DIGEST2" != "$DIGEST1" ]; then
  echo "FAIL: cached result digest $DIGEST2 != $DIGEST1" >&2
  exit 1
fi
if [ "$REACTIONS2" != "$REACTIONS1" ]; then
  echo "FAIL: reaction count moved ($REACTIONS1 -> $REACTIONS2): the hit simulated" >&2
  exit 1
fi
HITS=$(curl -fsS "http://$SRV/cache" | jq -re .hits)
HEALTH_HITS=$(curl -fsS "http://$SRV/healthz" | jq -re .cache_hits)
if [ "$HITS" -lt 1 ] || [ "$HEALTH_HITS" -lt 1 ]; then
  echo "FAIL: hit not counted (/cache hits=$HITS healthz cache_hits=$HEALTH_HITS)" >&2
  exit 1
fi
echo "cache hit ok: id=$ID1 digest=$DIGEST1 reactions=$REACTIONS1"

# --- Phase 2: two concurrent submits -> one simulation, shared stream --

curl -fsS "http://$SRV/jobs" -d "$SPEC2" >"$BIN/sub_a.json" &
PID_A=$!
curl -fsS "http://$SRV/jobs" -d "$SPEC2" >"$BIN/sub_b.json" &
PID_B=$!
wait "$PID_A" "$PID_B"
ID_A=$(jq -re .id "$BIN/sub_a.json")
ID_B=$(jq -re .id "$BIN/sub_b.json")
if [ "$ID_A" != "$ID_B" ]; then
  echo "FAIL: concurrent submits created two jobs ($ID_A, $ID_B)" >&2
  exit 1
fi
ATTACHES=$(curl -fsS "http://$SRV/cache" | jq -re .attaches)
if [ "$ATTACHES" -lt 1 ]; then
  echo "FAIL: no attach counted for the concurrent duplicate" >&2
  exit 1
fi

# Two concurrent readers of the shared job must see identical windows.
curl -fsSN "http://$SRV/jobs/$ID_A/stream" >"$BIN/stream_a.ndjson" &
PID_A=$!
curl -fsSN "http://$SRV/jobs/$ID_A/stream" >"$BIN/stream_b.ndjson" &
PID_B=$!
wait "$PID_A" "$PID_B"
STREAM_A=$(jq -c 'select(.type=="window") | .window' "$BIN/stream_a.ndjson" | sha256sum | cut -d' ' -f1)
STREAM_B=$(jq -c 'select(.type=="window") | .window' "$BIN/stream_b.ndjson" | sha256sum | cut -d' ' -f1)
WINDOWS_A=$(jq -c 'select(.type=="window")' "$BIN/stream_a.ndjson" | wc -l)
if [ "$WINDOWS_A" -lt 1 ] || [ "$STREAM_A" != "$STREAM_B" ]; then
  echo "FAIL: shared streams diverged ($WINDOWS_A windows, $STREAM_A vs $STREAM_B)" >&2
  exit 1
fi
echo "attach ok: id=$ID_A one simulation, two identical streams ($WINDOWS_A windows)"

# --- Phase 3: restart -> the index survives journal replay -------------

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true

"$BIN/cwc-serve" -listen "$SRV" -sim-workers 2 -data-dir "$DATA" &
wait_healthy "$SRV"

curl -fsS "http://$SRV/jobs" -d "$SPEC" >"$BIN/restart.json"
HIT=$(jq -r '.cache_hit // false' "$BIN/restart.json")
ID3=$(jq -re .id "$BIN/restart.json")
if [ "$HIT" != "true" ] || [ "$ID3" != "$ID1" ]; then
  echo "FAIL: post-restart resubmit missed (cache_hit=$HIT id=$ID3 want $ID1)" >&2
  exit 1
fi
curl -fsS "http://$SRV/jobs/$ID3/result?wait=true" >"$BIN/third.json"
DIGEST3=$(digest_of "$BIN/third.json")
if [ "$DIGEST3" != "$DIGEST1" ]; then
  echo "FAIL: post-restart digest $DIGEST3 != $DIGEST1" >&2
  exit 1
fi
echo "restart ok: index rebuilt from replay, digest $DIGEST3"

echo "PASS: cache hit, concurrent attach and replayed index all bit-identical"
