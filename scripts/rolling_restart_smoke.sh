#!/usr/bin/env bash
# Rolling-restart smoke: three replicas share one -data-dir, each runs a
# job, and each replica in turn is SIGTERMed and restarted — the graceful
# path, where a terminating replica drains: it checkpoints its running
# jobs at the frontier, releases their leases with handoff pointers, and
# nudges the least-loaded live peers to adopt them immediately (no lease
# TTL wait). The whole rolling restart must end with zero failed jobs and
# every job's window-stats digest bit-identical to an uninterrupted run.
#
# Needs: go, curl, jq, sha256sum. Run from the repo root. Set
# ROLLING_DATA_DIR to keep the data dir for debugging (CI uploads it on
# failure).
set -euo pipefail

BIN=$(mktemp -d)
DATA=${ROLLING_DATA_DIR:-$BIN/data}
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/cwc-serve" ./cmd/cwc-serve

REF=127.0.0.1:7140                  # uninterrupted reference
declare -A ADDR=([a]=127.0.0.1:7141 [b]=127.0.0.1:7142 [c]=127.0.0.1:7143)
declare -A PID

# Long enough that jobs are reliably in flight across all three restarts.
SPEC='{"model":"neurospora","omega":5000,"trajectories":16,"end":48,"period":0.125,"window":8,"step":8,"seed":42}'

. "$(dirname "$0")/lib.sh"

# -no-cache: the three tier jobs deliberately share one spec and seed so
# a single reference digest covers them all; the content-addressed cache
# would collapse them into one job via cross-replica attach.
start_replica() { # id
  "$BIN/cwc-serve" -listen "${ADDR[$1]}" -sim-workers 2 -data-dir "$DATA" \
    -lease-ttl 5s -drain-grace 100ms -no-cache \
    -replica-id "$1" -advertise-url "http://${ADDR[$1]}" &
  PID[$1]=$!
}

# Reference: uninterrupted run, no data dir. All three tier jobs use the
# same spec and seed, so one reference digest covers them all.
"$BIN/cwc-serve" -listen "$REF" -sim-workers 2 &
wait_healthy "$REF"
REF_ID=$(curl -fsS "http://$REF/jobs" -d "$SPEC" | jq -re .id)
curl -fsS "http://$REF/jobs/$REF_ID/result?wait=true" >"$BIN/ref.json"
[ "$(jq -re .status.state "$BIN/ref.json")" = done ]
REF_DIGEST=$(digest_of "$BIN/ref.json")
REF_WINDOWS=$(jq -re .status.progress.windows "$BIN/ref.json")

for r in a b c; do start_replica "$r"; done
for r in a b c; do wait_healthy "${ADDR[$r]}"; done

# One job in flight per replica.
declare -A JOB
for r in a b c; do
  JOB[$r]=$(curl -fsS "http://${ADDR[$r]}/jobs" -d "$SPEC" | jq -re .id)
done
echo "jobs: ${JOB[a]} ${JOB[b]} ${JOB[c]}"

# The first victim must be genuinely mid-run, so the drain has live work
# to hand off.
MIDRUN=0
for _ in $(seq 1 300); do
  WINDOWS=$(curl -fsS "http://${ADDR[a]}/jobs/${JOB[a]}" | jq -re .progress.windows)
  if [ "$WINDOWS" -ge 1 ] && [ "$WINDOWS" -lt "$REF_WINDOWS" ]; then MIDRUN=1; break; fi
  sleep 0.02
done
if [ "$MIDRUN" != 1 ]; then
  echo "FAIL: job a finished before the first restart (windows=$WINDOWS); enlarge the spec" >&2
  exit 1
fi

# survivor_of prints a live replica other than $1 to query through.
survivor_of() {
  case "$1" in
    a) echo b ;;
    b) echo c ;;
    c) echo a ;;
  esac
}

for r in a b c; do
  s=$(survivor_of "$r")
  echo "SIGTERM replica $r (querying via $s)"
  kill -TERM "${PID[$r]}"
  if ! wait "${PID[$r]}"; then
    echo "FAIL: replica $r exited non-zero on SIGTERM" >&2
    exit 1
  fi
  # No job may have been failed by the restart: every job is running
  # somewhere (or already done), never failed.
  for j in "${JOB[@]}"; do
    STATE=$(curl -fsS "http://${ADDR[$s]}/jobs/$j" | jq -re .state)
    if [ "$STATE" = failed ] || [ "$STATE" = cancelled ]; then
      echo "FAIL: job $j is $STATE after draining replica $r" >&2
      exit 1
    fi
  done
  start_replica "$r"
  wait_healthy "${ADDR[$r]}"
done
echo "rolling restart complete: all replicas cycled, zero failed jobs"

# Every job finishes done, wherever it was adopted; any replica answers.
for j in "${JOB[@]}"; do
  DONE=0
  for _ in $(seq 1 900); do
    STATE=$(curl -fsS "http://${ADDR[a]}/jobs/$j" | jq -re .state)
    if [ "$STATE" = done ]; then DONE=1; break; fi
    if [ "$STATE" = failed ] || [ "$STATE" = cancelled ]; then break; fi
    sleep 0.05
  done
  if [ "$DONE" != 1 ]; then
    echo "FAIL: job $j ended $STATE instead of done" >&2
    curl -fsS "http://${ADDR[a]}/jobs/$j" >&2 || true
    exit 1
  fi
  curl -fsS "http://${ADDR[a]}/jobs/$j/result" >"$BIN/$j.json"
  D=$(digest_of "$BIN/$j.json")
  W=$(jq -re '.windows | length' "$BIN/$j.json")
  echo "job $j: digest $D ($W windows)"
  if [ "$W" != "$REF_WINDOWS" ] || [ "$D" != "$REF_DIGEST" ]; then
    echo "FAIL: job $j diverged from the uninterrupted reference ($REF_DIGEST, $REF_WINDOWS windows)" >&2
    exit 1
  fi
done
echo "OK: rolling restart with drain/handoff is bit-identical to the uninterrupted run"
