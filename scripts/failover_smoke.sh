#!/usr/bin/env bash
# Two-replica failover smoke: replicas A and B share one -data-dir with
# job-ownership leases. A job is submitted through A; reads about it are
# answered by B (journal peek) and a cancel sent to B is transparently
# proxied to A. Then A is SIGKILLed mid-run: B must steal the lease at a
# higher epoch, adopt A's journal, resume the job from its durable
# frontier, and finish with a window-stats digest bit-identical to an
# uninterrupted single-process run.
#
# Needs: go, curl, jq, sha256sum. Run from the repo root. Set
# FAILOVER_DATA_DIR to keep the data dir for debugging (CI uploads it on
# failure).
set -euo pipefail

BIN=$(mktemp -d)
DATA=${FAILOVER_DATA_DIR:-$BIN/data}
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/cwc-serve" ./cmd/cwc-serve

REF=127.0.0.1:7130  # uninterrupted reference
A=127.0.0.1:7131    # replica that gets SIGKILLed
B=127.0.0.1:7132    # surviving replica

# Sized like the recovery smoke: reliably mid-run when the kill lands.
SPEC='{"model":"neurospora","omega":5000,"trajectories":16,"end":48,"period":0.125,"window":8,"step":8,"seed":42}'

. "$(dirname "$0")/lib.sh"

# Reference: uninterrupted run, no data dir.
"$BIN/cwc-serve" -listen "$REF" -sim-workers 2 &
wait_healthy "$REF"
REF_ID=$(curl -fsS "http://$REF/jobs" -d "$SPEC" | jq -re .id)
curl -fsS "http://$REF/jobs/$REF_ID/result?wait=true" >"$BIN/ref.json"
[ "$(jq -re .status.state "$BIN/ref.json")" = done ]
REF_DIGEST=$(digest_of "$BIN/ref.json")
REF_WINDOWS=$(jq -re .status.progress.windows "$BIN/ref.json")

# The replicated tier: A and B share $DATA; short lease TTL so failover
# lands within a couple of seconds of the kill.
REPL_FLAGS="-sim-workers 2 -data-dir $DATA -lease-ttl 2s"
"$BIN/cwc-serve" -listen "$A" $REPL_FLAGS -replica-id a -advertise-url "http://$A" &
A_PID=$!
"$BIN/cwc-serve" -listen "$B" $REPL_FLAGS -replica-id b -advertise-url "http://$B" &
wait_healthy "$A"
wait_healthy "$B"

JOB_ID=$(curl -fsS "http://$A/jobs" -d "$SPEC" | jq -re .id)
case "$JOB_ID" in
  job-a-*) ;;
  *) echo "FAIL: job id $JOB_ID does not carry replica a's infix" >&2; exit 1 ;;
esac

# Cross-replica serving while A is healthy: B answers for A's job from
# the shared journal, attributing the owner...
FOREIGN=$(curl -fsS "http://$B/jobs/$JOB_ID")
if [ "$(jq -re .owner <<<"$FOREIGN")" != a ]; then
  echo "FAIL: B's view of A's job lacks owner=a: $FOREIGN" >&2
  exit 1
fi
# ...redirects its live stream to A...
STREAM_LOC=$(curl -fsS -o /dev/null -w '%{redirect_url}' "http://$B/jobs/$JOB_ID/stream")
if [ "$STREAM_LOC" != "http://$A/jobs/$JOB_ID/stream" ]; then
  echo "FAIL: B redirected the stream to '$STREAM_LOC', want A" >&2
  exit 1
fi
# ...and proxies a cancel of a sacrificial job through to A. The victim
# needs its own seed: resubmitting $SPEC would attach to the main job
# (content-addressed dedup) and the cancel would kill it.
VICTIM_SPEC='{"model":"neurospora","omega":5000,"trajectories":16,"end":48,"period":0.125,"window":8,"step":8,"seed":99}'
VICTIM_ID=$(curl -fsS "http://$A/jobs" -d "$VICTIM_SPEC" | jq -re .id)
curl -fsS -X POST "http://$B/jobs/$VICTIM_ID/cancel" >/dev/null
for _ in $(seq 1 100); do
  VICTIM_STATE=$(curl -fsS "http://$A/jobs/$VICTIM_ID" | jq -re .state)
  [ "$VICTIM_STATE" = cancelled ] && break
  sleep 0.05
done
if [ "$VICTIM_STATE" != cancelled ]; then
  echo "FAIL: cancel proxied via B left the job $VICTIM_STATE on A" >&2
  exit 1
fi
echo "cross-replica serving OK: owner attribution, stream redirect, proxied cancel"

# SIGKILL A mid-run: no shutdown path, the lease just stops renewing.
MIDRUN=0
for _ in $(seq 1 300); do
  ST=$(curl -fsS "http://$A/jobs/$JOB_ID")
  WINDOWS=$(jq -re .progress.windows <<<"$ST")
  STATE=$(jq -re .state <<<"$ST")
  if [ "$STATE" != running ]; then break; fi
  if [ "$WINDOWS" -ge 3 ] && [ "$WINDOWS" -lt "$REF_WINDOWS" ]; then MIDRUN=1; break; fi
  sleep 0.02
done
if [ "$MIDRUN" != 1 ]; then
  echo "FAIL: job finished before the kill landed (windows=$WINDOWS); enlarge the spec" >&2
  exit 1
fi
kill -9 "$A_PID"
wait "$A_PID" 2>/dev/null || true
echo "killed replica a mid-run at $WINDOWS/$REF_WINDOWS windows"

# B: once the lease expires it steals at a higher epoch, adopts A's
# journal and drives the job to completion.
DONE=0
for _ in $(seq 1 600); do
  STATE=$(curl -fsS "http://$B/jobs/$JOB_ID" | jq -re .state)
  if [ "$STATE" = done ]; then DONE=1; break; fi
  if [ "$STATE" = failed ] || [ "$STATE" = cancelled ]; then break; fi
  sleep 0.05
done
if [ "$DONE" != 1 ]; then
  echo "FAIL: job ended $STATE on replica b instead of done" >&2
  curl -fsS "http://$B/jobs/$JOB_ID" >&2 || true
  exit 1
fi

curl -fsS "http://$B/jobs/$JOB_ID/result?wait=true" >"$BIN/failover.json"
if [ "$(jq -re .status.recovered "$BIN/failover.json")" != true ]; then
  echo "FAIL: failed-over job not marked recovered on replica b" >&2
  exit 1
fi
FAIL_DIGEST=$(digest_of "$BIN/failover.json")
FAIL_WINDOWS=$(jq -re .status.progress.windows "$BIN/failover.json")

echo "reference digest: $REF_DIGEST ($REF_WINDOWS windows)"
echo "failover digest:  $FAIL_DIGEST ($FAIL_WINDOWS windows)"

if [ "$FAIL_WINDOWS" != "$REF_WINDOWS" ]; then
  echo "FAIL: failed-over run published $FAIL_WINDOWS windows, reference $REF_WINDOWS" >&2
  exit 1
fi
if [ "$FAIL_DIGEST" != "$REF_DIGEST" ]; then
  echo "FAIL: failed-over window digest diverged from the uninterrupted run" >&2
  exit 1
fi
echo "OK: SIGKILL + lease steal failover is bit-identical to the uninterrupted run"
