# Shared helpers for the smoke scripts. Source after `set -euo pipefail`
# with:
#
#   . "$(dirname "$0")/lib.sh"
#
# Every script runs from the repo root and needs: go, curl, jq, sha256sum.

wait_healthy() { # host:port -> 0 once /healthz answers, 1 after ~10s
  for _ in $(seq 1 100); do
    if curl -fsS "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "server $1 never became healthy" >&2
  return 1
}

digest_of() { # result-json-file -> digest of the full window stream
  jq -c '.windows' "$1" | sha256sum | cut -d' ' -f1
}
