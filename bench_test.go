// Top-level benchmark harness: one testing.B benchmark per table and
// figure of the paper's evaluation, plus an end-to-end pipeline benchmark
// on the real stochastic engines. Each figure benchmark regenerates the
// experiment and reports its headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both times the harness and surfaces the reproduced numbers
// (EXPERIMENTS.md records the full tables).
package cwcflow_test

import (
	"context"
	"testing"

	"cwcflow/internal/bench"
	"cwcflow/internal/core"
	"cwcflow/internal/gpu"
)

// scale keeps the benchmark wall-clock reasonable while preserving every
// qualitative effect (the full publication parameters run in cmd/cwc-bench).
var scale = bench.Scale{Quanta: 12}

func BenchmarkFig3OneStatEngine(b *testing.B) {
	var e *bench.Experiment
	for i := 0; i < b.N; i++ {
		var err error
		e, err = bench.Fig3(1, 1, scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, e, "1024 trajectories", 32, "speedup1024@32w")
	report(b, e, "128 trajectories", 32, "speedup128@32w")
}

func BenchmarkFig3FourStatEngines(b *testing.B) {
	var e *bench.Experiment
	for i := 0; i < b.N; i++ {
		var err error
		e, err = bench.Fig3(4, 1, scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, e, "1024 trajectories", 32, "speedup1024@32w")
}

func BenchmarkFig4Cluster(b *testing.B) {
	var top *bench.Experiment
	for i := 0; i < b.N; i++ {
		var err error
		top, _, err = bench.Fig4(1, scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, top, "4 cores per host", 8, "speedup4c@8hosts")
	report(b, top, "2 cores per host", 8, "speedup2c@8hosts")
}

func BenchmarkFig5SingleVM(b *testing.B) {
	var e *bench.Experiment
	for i := 0; i < b.N; i++ {
		var err error
		e, err = bench.Fig5(1, bench.Scale{Quanta: 144})
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, e, "speedup", 4, "speedup@4cores")
}

func BenchmarkFig6TopVirtualCluster(b *testing.B) {
	var e *bench.Experiment
	for i := 0; i < b.N; i++ {
		var err error
		e, err = bench.Fig6Top(1, bench.Scale{Quanta: 144})
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, e, "speedup", 32, "speedup@32vcores")
}

func BenchmarkFig6BottomHeterogeneous(b *testing.B) {
	var e *bench.Experiment
	for i := 0; i < b.N; i++ {
		var err error
		e, err = bench.Fig6Bottom(1, bench.Scale{Quanta: 144})
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, e, "speedup", 96, "gain@96cores")
}

func BenchmarkTable1CPUvsGPU(b *testing.B) {
	var res bench.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.Table1(1, bench.Scale{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		if r.NSims == 2048 {
			b.ReportMetric(r.CPUQ10, "cpu2048q10_s")
			b.ReportMetric(r.GPUQ10, "gpu2048q10_s")
			b.ReportMetric(r.GPUQ1, "gpu2048q1_s")
		}
	}
}

// BenchmarkPipelineEndToEnd times the real shared-memory pipeline (actual
// Gillespie engines, alignment, statistics) on a small Neurospora
// ensemble — the live system rather than the platform model.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	factory, err := core.FactoryFor(core.ModelRef{Name: "neurospora", Omega: 50})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		Factory:      factory,
		Trajectories: 16,
		End:          12,
		Period:       0.5,
		SimWorkers:   4,
		StatEngines:  2,
		WindowSize:   8,
		BaseSeed:     1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(context.Background(), cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineGPUOffload is the same run offloaded to the simulated
// K40 device.
func BenchmarkPipelineGPUOffload(b *testing.B) {
	factory, err := core.FactoryFor(core.ModelRef{Name: "neurospora", Omega: 50})
	if err != nil {
		b.Fatal(err)
	}
	dev, err := gpu.NewDevice(gpu.TeslaK40())
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		Factory:      factory,
		Trajectories: 16,
		End:          12,
		Period:       0.5,
		SimWorkers:   4,
		StatEngines:  2,
		WindowSize:   8,
		BaseSeed:     1,
	}
	b.ResetTimer()
	var util float64
	for i := 0; i < b.N; i++ {
		_, ginfo, err := core.RunGPU(context.Background(), cfg, dev, nil)
		if err != nil {
			b.Fatal(err)
		}
		util = ginfo.Utilization
	}
	b.ReportMetric(util*100, "simt_util_%")
}

func report(b *testing.B, e *bench.Experiment, label string, x float64, metric string) {
	b.Helper()
	if v, ok := e.Lookup(label, x); ok {
		b.ReportMetric(v, metric)
	}
}
